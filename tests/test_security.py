"""Tests for the Section 5 security analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import BlockHammerConfig
from repro.security.adversary import (
    OptimalAttacker,
    max_acts_in_any_window,
    simulate_optimal_attack,
)
from repro.security.constraints import AttackConstraints
from repro.security.epochs import EpochModel, EpochType, PREDECESSORS
from repro.security.solver import prove_safety


@pytest.fixture
def table1_config():
    return BlockHammerConfig()


@pytest.fixture
def small_config():
    """A scaled config whose adversary simulation runs in milliseconds."""
    return BlockHammerConfig(
        nrh=256,
        t_refw_ns=500_000.0,
        t_cbf_ns=500_000.0,
        nbl=64,
        cbf_size=1024,
    )


# ----------------------------------------------------------------------
# Epoch model (Table 2).
# ----------------------------------------------------------------------
def test_epoch_bounds_table1(table1_config):
    model = EpochModel(table1_config)
    bounds = model.all_bounds()
    assert bounds[EpochType.T0] == table1_config.nbl - 1
    assert bounds[EpochType.T1] == table1_config.nbl - 1
    # T2: NBL burst + tDelay-spaced remainder.
    expected_t2 = table1_config.nbl + int(
        (model.tep - table1_config.nbl * table1_config.t_rc_ns)
        / table1_config.t_delay_ns
    )
    assert bounds[EpochType.T2] == expected_t2
    # T3/T4: tDelay-spaced all epoch.
    assert bounds[EpochType.T4] == int(model.tep / table1_config.t_delay_ns)
    assert bounds[EpochType.T3] == min(
        table1_config.nbl - 1, bounds[EpochType.T4]
    )


def test_two_epochs_per_refresh_window(table1_config):
    assert EpochModel(table1_config).epochs_per_refresh_window() == 2


def test_predecessor_structure():
    # Un-blacklisted epoch types follow un-blacklisting types.
    for t in (EpochType.T0, EpochType.T1, EpochType.T2):
        assert PREDECESSORS[t] == {EpochType.T0, EpochType.T1, EpochType.T3}
    for t in (EpochType.T3, EpochType.T4):
        assert PREDECESSORS[t] == {EpochType.T2, EpochType.T4}


# ----------------------------------------------------------------------
# Constraints and solver (Table 3 / Section 5).
# ----------------------------------------------------------------------
def test_constraint_vector_checks(table1_config):
    constraints = AttackConstraints.for_config(table1_config)
    assert constraints.satisfied_by((0, 0, 1, 1, 0))
    assert not constraints.satisfied_by((0, 0, 2, 0, 0))  # n2 > n3
    assert not constraints.satisfied_by((3, 0, 0, 0, 0))  # over budget
    assert not constraints.satisfied_by((-1, 0, 1, 1, 0))


def test_proof_table1_is_safe(table1_config):
    proof = prove_safety(table1_config)
    assert proof.safe
    assert proof.lp_max_activations < proof.nrh_star
    assert proof.enumeration_max_activations is not None
    assert proof.enumeration_max_activations <= proof.lp_max_activations + 1e-6
    # The optimum is the T2+T3 schedule, one tick below NRH*.
    assert proof.best_counts == (0, 0, 1, 1, 0)
    # The straddling-window bound lands exactly at the Eq. 1 budget.
    assert proof.fast_delayed_max <= proof.nrh_star
    assert proof.fast_delayed_max == pytest.approx(proof.nrh_star, rel=0.001)


def test_proof_safe_across_table7_configs():
    for nrh in (32768, 16384, 8192, 4096, 2048, 1024):
        proof = prove_safety(BlockHammerConfig.for_nrh(nrh))
        assert proof.safe, f"NRH={nrh} not proven safe"


def test_proof_detects_misconfiguration():
    """Sanity: an overly-lax tCBF breaks the guarantee and the solver
    notices (tCBF = 2 x tREFW doubles the per-window budget)."""
    bad = BlockHammerConfig(t_cbf_ns=128.0 * 10**6, t_refw_ns=64.0 * 10**6)
    proof = prove_safety(bad)
    assert not proof.safe


# ----------------------------------------------------------------------
# Adversarial simulation.
# ----------------------------------------------------------------------
def test_sliding_window_counter():
    times = [0.0, 10.0, 20.0, 100.0, 105.0]
    assert max_acts_in_any_window(times, window_ns=25.0) == 3
    assert max_acts_in_any_window(times, window_ns=5.0) == 1
    assert max_acts_in_any_window([], window_ns=10.0) == 0


def test_greedy_adversary_never_exceeds_nrh_star(small_config):
    """Eq. 1 makes the worst schedule land exactly on the NRH* budget —
    the greedy adversary can reach but never exceed it."""
    observed = simulate_optimal_attack(small_config, num_windows=3.0)
    assert observed <= small_config.nrh_star


def test_greedy_adversary_is_throttled(small_config):
    attacker = OptimalAttacker(small_config)
    times = attacker.run(small_config.t_refw_ns, row=50)
    # The first NBL activations run at tRC pace; afterwards tDelay rules.
    assert len(times) > small_config.nbl
    late_gaps = [b - a for a, b in zip(times[-10:], times[-9:])]
    assert all(gap >= small_config.t_delay_ns * 0.999 for gap in late_gaps)


@given(st.integers(min_value=8, max_value=64))
@settings(max_examples=8, deadline=None)
def test_adversary_bound_property(nbl):
    """For random small configs, the greedy adversary never exceeds the
    analytical per-window bound."""
    config = BlockHammerConfig(
        nrh=nbl * 8,
        t_refw_ns=50_000.0,
        t_cbf_ns=50_000.0,
        nbl=nbl,
        cbf_size=512,
    )
    observed = simulate_optimal_attack(config, num_windows=2.5)
    assert observed <= config.nrh_star
