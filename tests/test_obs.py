"""Unit tests for the observability layer (`repro.obs`).

The zero-overhead contract is probed directly: a disabled probe is
*absence* (``None`` component attributes, the falsy :data:`NULL_PROBE`
for callable-holding call sites), the trace sink is a bounded ring that
counts its losses, and the Perfetto export is plain ``trace_event``
JSON any Chrome/Perfetto build can open.
"""

from __future__ import annotations

import json

import pytest

from repro.cpu.trace import ListTrace, TraceRecord
from repro.obs import (
    NULL_PROBE,
    ChannelCommandLog,
    EpochMetricsCollector,
    JobProfile,
    ObsConfig,
    Probe,
    TelemetryBus,
    TraceSink,
    report_to_json,
    to_perfetto,
    write_perfetto,
)
from repro.obs.metrics import FIELDS
from repro.obs.profile import format_profile_breakdown, write_report_json
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.utils.rng import DeterministicRng


# ----------------------------------------------------------------------
# Probe semantics.
# ----------------------------------------------------------------------
def test_null_probe_is_falsy_callable_noop():
    assert not NULL_PROBE
    assert NULL_PROBE(123.0, "anything", 4, foo="bar") is None
    assert NULL_PROBE() is None  # argument-agnostic


def test_probe_is_truthy_and_emits():
    sink = TraceSink()
    probe = Probe(sink, "mem")
    assert probe
    probe(10.0, "vref", 2, rank=0, bank=1)
    probe(11.0, "ref")
    assert sink.events == [
        (10.0, "mem", "vref", 2, {"rank": 0, "bank": 1}),
        (11.0, "mem", "ref", 0, None),  # no kwargs -> None payload
    ]


def test_obs_config_defaults_are_inert():
    config = ObsConfig()
    assert not config.trace and not config.metrics
    bus = TelemetryBus()
    assert not bus.enabled
    assert bus.trace is None and bus.metrics is None
    assert bus.probe("mem") is NULL_PROBE


def test_bus_hands_out_category_probes():
    bus = TelemetryBus(ObsConfig(trace=True))
    assert bus.enabled
    probe = bus.probe("mitigation")
    assert isinstance(probe, Probe)
    probe(5.0, "dcbf_rotate", 1, epoch=3)
    assert bus.trace.count("mitigation", "dcbf_rotate") == 1


def test_bus_metrics_only_mode():
    bus = TelemetryBus(ObsConfig(metrics=True))
    assert bus.enabled
    assert bus.trace is None and bus.metrics is not None
    assert bus.probe("mem") is NULL_PROBE  # no trace -> no live probes


# ----------------------------------------------------------------------
# Trace sink: ring bound, warmup boundary, counting.
# ----------------------------------------------------------------------
def test_ring_bound_drops_oldest_and_counts():
    sink = TraceSink(limit=3)
    for i in range(5):
        sink.emit(float(i), "mem", "ref", 0)
    assert sink.total_emitted == 5
    assert sink.dropped == 2
    assert [event[0] for event in sink.events] == [2.0, 3.0, 4.0]


def test_trace_limit_validation():
    with pytest.raises(ValueError):
        TraceSink(limit=0)


def test_measured_events_boundary_is_strict():
    """The warmup batch runs *to* the boundary, so an event exactly at
    the reset instant belongs to warmup; measured events are strictly
    later."""
    sink = TraceSink()
    sink.emit(1.0, "mem", "ref", 0)
    sink.emit(2.0, "mem", "ref", 0)  # lands exactly on the boundary
    sink.note_measurement_reset(2.0)
    sink.emit(2.5, "mem", "ref", 0)
    assert sink.measure_start == 2.0
    assert [event[0] for event in sink.measured_events()] == [2.5]
    assert sink.count("mem", "ref") == 3
    assert sink.count("mem", "ref", measured_only=True) == 1


def test_measured_events_without_reset_is_everything():
    sink = TraceSink()
    sink.emit(1.0, "mem", "ref", 0)
    assert sink.measure_start is None
    assert sink.measured_events() == sink.events


def test_count_filters_by_category_and_name():
    sink = TraceSink()
    sink.emit(1.0, "mem", "ref", 0)
    sink.emit(2.0, "mem", "vref", 0)
    sink.emit(3.0, "os", "kill", 0)
    assert sink.count() == 3
    assert sink.count("mem") == 2
    assert sink.count(name="vref") == 1
    assert sink.count("os", "vref") == 0


def test_channel_command_log_adapts_device_records():
    sink = TraceSink()
    log = ChannelCommandLog(sink, channel=3)
    log.append((42.0, "ACT", 0, 2, 17, None))
    log.append((43.0, "RD", 0, 2, None, 5))
    log.append((44.0, "REF", 1, 0, None, None))
    assert sink.events == [
        (42.0, "dram", "ACT", 3, {"rank": 0, "bank": 2, "row": 17}),
        (43.0, "dram", "RD", 3, {"rank": 0, "bank": 2, "col": 5}),
        (44.0, "dram", "REF", 3, {"rank": 1, "bank": 0}),
    ]


# ----------------------------------------------------------------------
# Perfetto export.
# ----------------------------------------------------------------------
def test_perfetto_export_shape():
    sink = TraceSink()
    sink.emit(1500.0, "dram", "ACT", 1, {"rank": 0, "bank": 2, "row": 7})
    sink.emit(2500.0, "mitigation", "dcbf_rotate", 0, {"epoch": 1})
    sink.note_measurement_reset(2000.0)
    document = to_perfetto(sink.events, measure_start=sink.measure_start)
    assert document["displayTimeUnit"] == "ns"
    events = document["traceEvents"]
    # One process_name metadata record per category seen.
    metas = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metas} == {"dram", "mitigation"}
    instants = [e for e in events if e["ph"] == "i" and e.get("cat") != "sim"]
    act = next(e for e in instants if e["name"] == "ACT")
    assert act["ts"] == 1.5  # ns -> us
    assert act["pid"] == 1 and act["tid"] == 1  # dram pid, channel track
    assert act["args"]["ts_ns"] == 1500.0 and act["args"]["row"] == 7
    rotate = next(e for e in instants if e["name"] == "dcbf_rotate")
    assert rotate["pid"] == 3  # mitigation pid is stable
    marker = next(e for e in events if e.get("cat") == "sim")
    assert marker["name"] == "measure_start" and marker["ts"] == 2.0
    json.dumps(document)  # JSON-serializable end to end


def test_perfetto_unknown_category_gets_fresh_pid():
    document = to_perfetto([(1.0, "custom", "tick", 0, None)])
    instant = next(e for e in document["traceEvents"] if e["ph"] == "i")
    assert instant["pid"] > 4  # above the reserved category pids


def test_write_perfetto_round_trips(tmp_path):
    sink = TraceSink()
    sink.emit(10.0, "os", "kill", 0, {"thread": 2})
    path = tmp_path / "trace.json"
    document = write_perfetto(path, sink)
    assert json.loads(path.read_text()) == document


# ----------------------------------------------------------------------
# Epoch metrics collector.
# ----------------------------------------------------------------------
def _tiny_system(tiny_spec, obs=None):
    rng = DeterministicRng(9)
    records = [
        TraceRecord(
            gap=rng.randint(5, 30),
            address=rng.randint(0, 63) * 8192 * 64,
            is_write=rng.uniform() < 0.3,
        )
        for _ in range(300)
    ]
    config = SystemConfig(spec=tiny_spec, seed=5)
    return System(config, [ListTrace(records)], obs=obs)


def test_collector_phases_and_measured_rows(tiny_spec):
    collector = EpochMetricsCollector()
    system = _tiny_system(tiny_spec)
    collector.begin_warmup()
    collector.sample(system, 100.0)
    collector.note_measurement_reset(150.0)
    collector.sample(system, 200.0)
    assert collector.epochs == 2
    phases = {row["phase"] for row in collector.rows}
    assert phases == {"warmup", "measure"}
    assert all(row["phase"] == "measure" for row in collector.measured_rows())
    assert {row["epoch"] for row in collector.measured_rows()} == {1}


def test_collector_samples_queue_depth_and_backlog(tiny_spec):
    collector = EpochMetricsCollector()
    system = _tiny_system(tiny_spec)
    collector.sample(system, 0.0)
    metrics = {row["metric"] for row in collector.rows}
    assert {"read_queue_depth", "write_queue_depth", "vref_backlog"} <= metrics


def test_collector_csv_round_trip(tmp_path, tiny_spec):
    import csv

    collector = EpochMetricsCollector()
    system = _tiny_system(tiny_spec)
    collector.sample(system, 10.0)
    path = tmp_path / "metrics.csv"
    count = collector.write_csv(path)
    assert count == len(collector.rows) > 0
    with open(path) as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == count
    assert tuple(rows[0]) == FIELDS


def test_system_schedules_metrics_sampling(tiny_spec):
    """Metrics events ride the ordinary event queue: an enabled bus
    yields samples at the configured cadence without any tracing."""
    bus = TelemetryBus(ObsConfig(metrics=True, metrics_epoch_ns=50.0))
    system = _tiny_system(tiny_spec, obs=bus)
    result = system.run(instructions_per_thread=2_000)
    assert bus.metrics.epochs >= 2
    assert bus.metrics.rows
    assert result.elapsed_ns > 0.0


def test_metrics_do_not_change_results(tiny_spec):
    """Enabling metrics perturbs only ``events_processed`` (the one
    field excluded from result-equality comparisons)."""
    import dataclasses

    plain = _tiny_system(tiny_spec).run(instructions_per_thread=2_000)
    bus = TelemetryBus(ObsConfig(metrics=True, metrics_epoch_ns=50.0))
    observed = _tiny_system(tiny_spec, obs=bus).run(instructions_per_thread=2_000)
    assert dataclasses.replace(plain, events_processed=0) == dataclasses.replace(
        observed, events_processed=0
    )


# ----------------------------------------------------------------------
# Job profiles and the --report-json document.
# ----------------------------------------------------------------------
def test_job_profile_rate():
    profile = JobProfile("mix:a:none", "executed", wall_s=2.0, events=1000)
    assert profile.events_per_sec == 500.0
    assert JobProfile("x", "failed").events_per_sec is None
    assert JobProfile("x", "cached", wall_s=0.0, events=5).events_per_sec is None


def test_report_to_json_shape_and_aggregate():
    from repro.harness.parallel import JobFailure, SweepReport

    report = SweepReport(total=3, cached=1, executed=1, retries=2, elapsed_s=1.2345)
    report.profiles.append(JobProfile("a", "executed", wall_s=2.0, events=1000))
    report.profiles.append(JobProfile("b", "cached", wall_s=0.001, events=500))
    report.failures.append(JobFailure(key=("single", "x"), kind="crash", attempts=3))
    report.profiles.append(JobProfile("single:x", "failed", attempts=3))
    document = report_to_json(report)
    assert document["total"] == 3 and document["retries"] == 2
    assert document["elapsed_s"] == 1.234  # rounded
    assert document["failures"][0]["kind"] == "crash"
    assert len(document["jobs"]) == 3
    # Aggregate throughput covers executed jobs only.
    assert document["aggregate"]["executed_events"] == 1000
    assert document["aggregate"]["events_per_sec"] == 500
    json.dumps(document)


def test_write_report_json(tmp_path):
    from repro.harness.parallel import SweepReport

    path = tmp_path / "report.json"
    document = write_report_json(SweepReport(total=0), path)
    assert json.loads(path.read_text()) == document
    assert document["aggregate"]["events_per_sec"] is None


def test_format_profile_breakdown():
    from repro.harness.parallel import SweepReport

    report = SweepReport()
    assert "no job profiles" in format_profile_breakdown(report)
    report.profiles.append(JobProfile("slow", "executed", wall_s=1.0, events=100))
    report.profiles.append(JobProfile("fast", "executed", wall_s=0.1, events=100))
    report.profiles.append(JobProfile("hit", "cached", wall_s=0.001, events=10))
    text = format_profile_breakdown(report)
    assert "slow" in text and "(2 executed, 1 cached, 0 failed)" in text
    # Slowest first.
    assert text.index("slow") < text.index("fast")
