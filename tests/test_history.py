"""Unit and property tests for the activation history buffer."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.history import ActivationHistoryBuffer


def test_capacity_from_tfaw_sizing():
    hb = ActivationHistoryBuffer(t_delay_ns=7770.0, t_faw_ns=35.0)
    assert hb.capacity == math.ceil(4 * 7770.0 / 35.0)  # 888 (Table 1: ~887)


def test_recent_activation_found():
    hb = ActivationHistoryBuffer(t_delay_ns=100.0, t_faw_ns=35.0)
    hb.record(5, now=10.0)
    assert hb.recently_activated(5, now=50.0)
    assert hb.last_activation(5, now=50.0) == 10.0


def test_expiry_after_tdelay():
    hb = ActivationHistoryBuffer(t_delay_ns=100.0, t_faw_ns=35.0)
    hb.record(5, now=10.0)
    assert not hb.recently_activated(5, now=110.1)
    assert len(hb) == 0


def test_allowed_at_blocks_until_expiry():
    hb = ActivationHistoryBuffer(t_delay_ns=100.0, t_faw_ns=35.0)
    hb.record(5, now=10.0)
    assert hb.allowed_at(5, now=50.0) == pytest.approx(110.0)
    assert hb.allowed_at(5, now=120.0) == 120.0
    assert hb.allowed_at(99, now=50.0) == 50.0  # never recorded


def test_reactivation_refreshes_window():
    hb = ActivationHistoryBuffer(t_delay_ns=100.0, t_faw_ns=35.0)
    hb.record(5, now=0.0)
    hb.record(5, now=80.0)
    assert hb.recently_activated(5, now=150.0)
    assert hb.allowed_at(5, now=150.0) == pytest.approx(180.0)


def test_overflow_evicts_oldest():
    hb = ActivationHistoryBuffer(t_delay_ns=35.0, t_faw_ns=35.0)
    assert hb.capacity == 4
    for row in range(6):
        hb.record(row, now=1.0)
    assert hb.overflows == 2
    assert not hb.recently_activated(0, now=1.0)
    assert hb.recently_activated(5, now=1.0)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.floats(min_value=0.0, max_value=1000.0),
        ),
        max_size=50,
    )
)
@settings(max_examples=50, deadline=None)
def test_no_stale_positive(events):
    """After any insertion sequence, a row reported as recently-activated
    must genuinely have an in-window record."""
    hb = ActivationHistoryBuffer(t_delay_ns=50.0, t_faw_ns=35.0)
    events = sorted(events, key=lambda e: e[1])
    for row, time in events:
        hb.record(row, time)
    now = (events[-1][1] if events else 0.0) + 25.0
    for row in range(31):
        if hb.recently_activated(row, now):
            in_window = [t for r, t in events if r == row and t > now - 50.0]
            assert in_window
