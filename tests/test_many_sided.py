"""Many-sided attack handling (Section 4, Eq. 3).

On chips with a blast radius beyond the immediate neighbor, many-sided
attacks accumulate disturbance from several aggressors.  BlockHammer
counters this by shrinking its effective threshold NRH* per Eq. 3; these
tests run TRRespass-style many-sided attacks against chips with a wider
blast radius and verify protection end to end.
"""

import pytest

from repro.core.blockhammer import BlockHammer
from repro.dram.address import AddressMapping, MappingScheme
from repro.dram.rowhammer import DisturbanceProfile
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.attacks import many_sided_attack


def run_many_sided(small_spec, mechanism, blast_radius=2, nrh=192, sides=6):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    trace = many_sided_attack(small_spec, mapping, first_row=64, sides=sides, banks=[0, 1])
    profile = DisturbanceProfile(nrh=nrh, blast_radius=blast_radius, decay=0.5)
    config = SystemConfig(spec=small_spec, disturbance=profile)
    system = System(config, [trace], mechanism)
    return system.run(instructions_per_thread=60_000)


def test_many_sided_defeats_unprotected_system(small_spec):
    result = run_many_sided(small_spec, None)
    assert result.total_bitflips > 0


def test_blockhammer_eq3_blocks_many_sided(small_spec):
    mechanism = BlockHammer()
    result = run_many_sided(small_spec, mechanism)
    # Eq. 3 tightened the threshold for blast radius 2.
    assert mechanism.config.nrh_star == pytest.approx(192 / (2 * 1.5))
    assert result.total_bitflips == 0


def test_blockhammer_misconfigured_blast_radius_is_weaker(small_spec):
    """Configuring for double-sided only (blast radius 1) on a chip with
    blast radius 2 leaves a higher NRH*; this documents why Eq. 3 needs
    the *chip's* characterized blast radius."""
    from repro.core.config import BlockHammerConfig

    correct = BlockHammer()
    run_many_sided(small_spec, correct, blast_radius=2)
    naive_config = BlockHammerConfig.for_nrh(192, small_spec, blast_radius=1)
    assert naive_config.nrh_star > correct.config.nrh_star


def test_cumulative_disturbance_of_many_sided(small_spec):
    """Six aggressors two rows apart disturb interior victims from both
    sides at multiple distances."""
    profile = DisturbanceProfile(nrh=10_000, blast_radius=2, decay=0.5)
    from repro.dram.rowhammer import DisturbanceModel

    model = DisturbanceModel(profile, rows=small_spec.rows_per_bank, rank=0, bank=0)
    for aggressor in (64, 66, 68):
        model.on_activate(aggressor, now=0.0)
    # Victim 65: distance 1 from both 64 and 66 -> 2.0; plus 68 beyond
    # radius 2... distance 3 -> 0. Row 67: d1 from 66,68 (2.0) + d2 ... wait
    # 67 is odd: d(64)=3 -> 0, so 2.0 + 0.5 from 65? 65 not an aggressor.
    assert model.disturbance_of(65) == pytest.approx(2.0)
    # Row 66 is itself an aggressor; its disturbance comes from 64 and 68
    # at distance 2 each: 0.5 + 0.5.
    assert model.disturbance_of(66) == pytest.approx(1.0)
