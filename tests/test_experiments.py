"""Smoke tests for the per-figure experiment drivers.

Tiny configurations: these verify driver plumbing (row shapes,
normalization, aggregation), not the paper's numbers — the benchmarks
do that at full fidelity.
"""

import pytest

from repro.harness.experiments import (
    fig4_group_means,
    fig4_singlecore,
    fig5_multicore,
    rhli_experiment,
    sec84_internals,
    summarize_mix_rows,
    table8_calibration,
)
from repro.harness.runner import HarnessConfig
from repro.workloads.mixes import WorkloadMix, benign_mixes


@pytest.fixture(scope="module")
def tiny_hcfg():
    return HarnessConfig(scale=512, instructions_per_thread=8_000, warmup_ns=5_000.0)


def test_fig4_driver_rows(tiny_hcfg):
    rows = fig4_singlecore(tiny_hcfg, ["403.gcc"], mechanisms=["blockhammer"])
    assert len(rows) == 1
    row = rows[0]
    assert row["app"] == "403.gcc"
    assert row["mechanism"] == "blockhammer"
    assert row["norm_time"] > 0
    assert row["norm_energy"] > 0


def test_fig4_group_means_aggregates():
    rows = [
        {"category": "L", "mechanism": "x", "norm_time": 1.0, "norm_energy": 2.0},
        {"category": "L", "mechanism": "x", "norm_time": 3.0, "norm_energy": 4.0},
    ]
    means = fig4_group_means(rows)
    assert means == [
        {
            "category": "L",
            "mechanism": "x",
            "norm_time": 2.0,
            "norm_energy": 3.0,
            "failed": 0,
        }
    ]


def test_fig4_group_means_counts_failed_rows():
    rows = [
        {"category": "L", "mechanism": "x", "norm_time": 1.0, "norm_energy": 2.0},
        {"category": "L", "mechanism": "x", "norm_time": None, "norm_energy": None},
    ]
    means = fig4_group_means(rows)
    assert means == [
        {
            "category": "L",
            "mechanism": "x",
            "norm_time": 1.0,
            "norm_energy": 2.0,
            "failed": 1,
        }
    ]


def test_fig5_driver_and_summary(tiny_hcfg):
    rows = fig5_multicore(tiny_hcfg, num_mixes=1, mechanisms=["blockhammer"])
    assert len(rows) == 2  # one no-attack + one attack row
    scenarios = {r.scenario for r in rows}
    assert scenarios == {"no-attack", "attack"}
    summary = summarize_mix_rows(rows)
    assert len(summary) == 2
    assert all(s["mechanism"] == "blockhammer" for s in summary)
    assert all(s["norm_ws_mean"] > 0 for s in summary)


def test_rhli_driver_shapes(tiny_hcfg):
    rows = rhli_experiment(tiny_hcfg, num_mixes=1)
    assert [r["mode"] for r in rows] == ["blockhammer-observe", "blockhammer"]
    assert all("attacker_rhli_mean" in r for r in rows)


def test_rhli_benign_only_mixes_report_none_attacker_stats(tiny_hcfg):
    """Benign-only mixes have an empty attacker-RHLI population: the
    driver must emit None, not raise on statistics.mean/max of []."""
    rows = rhli_experiment(tiny_hcfg, mixes=benign_mixes(1))
    for row in rows:
        assert row["attacker_rhli_mean"] is None
        assert row["attacker_rhli_max"] is None
        assert row["attacker_rhli_min"] is None
        assert isinstance(row["benign_rhli_max"], float)


def test_rhli_single_thread_attack_mix_reports_none_benign_stats():
    """A one-thread attack-only mix has no benign threads; the run is
    time-bounded because an attacker never gates completion."""
    hcfg = HarnessConfig(
        scale=512,
        instructions_per_thread=2_000,
        warmup_ns=1_000.0,
        max_time_ns=20_000.0,
    )
    solo = WorkloadMix(name="solo-attack", app_names=("attack",), has_attack=True)
    rows = rhli_experiment(hcfg, mixes=[solo])
    for row in rows:
        assert row["benign_rhli_max"] is None
        assert isinstance(row["attacker_rhli_mean"], float)


def test_sec84_driver_shape(tiny_hcfg):
    stats = sec84_internals(tiny_hcfg, num_mixes=1)
    assert stats["total_acts"] > 0
    assert 0.0 <= stats["false_positive_rate"] <= 1.0
    assert stats["fp_delay_p100_ns"] >= stats["fp_delay_p50_ns"]


def test_table8_driver_shape(tiny_hcfg):
    rows = table8_calibration(tiny_hcfg, ["429.mcf"])
    assert rows[0]["app"] == "429.mcf"
    assert rows[0]["measured_mpki"] > 0
