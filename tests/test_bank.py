"""Unit tests for the bank state machine and timing rules."""

import pytest

from repro.dram.bank import Bank
from repro.dram.commands import CommandKind
from repro.dram.spec import DDR4_2400


@pytest.fixture
def bank():
    return Bank(DDR4_2400, rank_id=0, bank_id=0)


def test_initial_state_precharged(bank):
    assert bank.open_row is None
    assert bank.can_issue(CommandKind.ACT, 5, now=0.0)
    assert not bank.can_issue(CommandKind.RD, 5, now=0.0)
    assert not bank.can_issue(CommandKind.PRE, 5, now=0.0)


def test_activate_opens_row_and_blocks_reactivation(bank):
    bank.issue(CommandKind.ACT, 7, now=100.0)
    assert bank.open_row == 7
    assert not bank.can_issue(CommandKind.ACT, 8, now=100.0)
    # tRC gates the next ACT even after a PRE.
    assert bank.earliest(CommandKind.ACT) == pytest.approx(100.0 + DDR4_2400.tRC)


def test_read_requires_trcd(bank):
    bank.issue(CommandKind.ACT, 7, now=0.0)
    assert not bank.can_issue(CommandKind.RD, 7, now=1.0)
    assert bank.can_issue(CommandKind.RD, 7, now=DDR4_2400.tRCD)
    assert not bank.can_issue(CommandKind.RD, 9, now=DDR4_2400.tRCD)  # wrong row


def test_precharge_requires_tras(bank):
    bank.issue(CommandKind.ACT, 7, now=0.0)
    assert not bank.can_issue(CommandKind.PRE, 7, now=1.0)
    assert bank.can_issue(CommandKind.PRE, 7, now=DDR4_2400.tRAS)
    bank.issue(CommandKind.PRE, 7, now=DDR4_2400.tRAS)
    assert bank.open_row is None
    # tRP after PRE before next ACT.
    assert bank.earliest(CommandKind.ACT) >= DDR4_2400.tRAS + DDR4_2400.tRP


def test_act_to_act_respects_trc(bank):
    s = DDR4_2400
    bank.issue(CommandKind.ACT, 1, now=0.0)
    bank.issue(CommandKind.PRE, 1, now=s.tRAS)
    assert bank.earliest(CommandKind.ACT) == pytest.approx(s.tRC)


def test_write_recovery_gates_precharge(bank):
    s = DDR4_2400
    bank.issue(CommandKind.ACT, 3, now=0.0)
    bank.issue(CommandKind.WR, 3, now=s.tRCD)
    expected = s.tRCD + s.tCWL + s.tBL + s.tWR
    assert bank.earliest(CommandKind.PRE) >= expected


def test_read_to_precharge_trtp(bank):
    s = DDR4_2400
    bank.issue(CommandKind.ACT, 3, now=0.0)
    bank.issue(CommandKind.RD, 3, now=s.tRCD)
    assert bank.earliest(CommandKind.PRE) >= s.tRCD + s.tRTP


def test_refresh_occupies_bank_for_trfc(bank):
    s = DDR4_2400
    bank.issue(CommandKind.REF, 0, now=0.0)
    assert bank.earliest(CommandKind.ACT) == pytest.approx(s.tRFC)


def test_vref_occupies_bank_for_trc(bank):
    s = DDR4_2400
    bank.issue(CommandKind.VREF, 42, now=0.0)
    assert bank.earliest(CommandKind.ACT) == pytest.approx(s.tRC)
    assert bank.open_row is None


def test_stats_counters(bank):
    s = DDR4_2400
    bank.issue(CommandKind.ACT, 1, now=0.0)
    bank.issue(CommandKind.RD, 1, now=s.tRCD)
    bank.issue(CommandKind.WR, 1, now=s.tRCD + s.tCCD)
    bank.issue(CommandKind.PRE, 1, now=200.0)
    assert bank.stats.activations == 1
    assert bank.stats.reads == 1
    assert bank.stats.writes == 1
    assert bank.stats.precharges == 1


def test_column_commands_respect_tccd(bank):
    s = DDR4_2400
    bank.issue(CommandKind.ACT, 1, now=0.0)
    bank.issue(CommandKind.RD, 1, now=s.tRCD)
    assert bank.earliest(CommandKind.RD) == pytest.approx(s.tRCD + s.tCCD)
