"""Unit tests for workload profiles, the generator, attacks, and mixes."""

import pytest

from repro.dram.address import AddressMapping, MappingScheme
from repro.utils.rng import DeterministicRng
from repro.utils.validation import ConfigError
from repro.workloads.attacks import (
    build_attack_trace,
    double_sided_attack,
    many_sided_attack,
    single_sided_attack,
)
from repro.workloads.attacks import DEFAULT_VICTIM_ROW
from repro.workloads.generator import ProfileTrace, build_benign_trace
from repro.workloads.mixes import (
    ATTACKER_THREAD,
    attack_mixes,
    benign_mixes,
    mix_row_offset,
    mix_row_stride,
)
from repro.workloads.profiles import (
    TABLE8_PROFILES,
    Category,
    profile_by_name,
    profiles_in_category,
)


# ----------------------------------------------------------------------
# Profiles (Table 8).
# ----------------------------------------------------------------------
def test_thirty_applications():
    assert len(TABLE8_PROFILES) == 30


def test_category_counts_match_table8():
    assert len(profiles_in_category(Category.L)) == 12
    assert len(profiles_in_category(Category.M)) == 9
    assert len(profiles_in_category(Category.H)) == 9


def test_published_values_preserved():
    mcf = profile_by_name("429.mcf")
    assert mcf.table_mpki == 201.7
    assert mcf.rbcpki == 62.3
    libquantum = profile_by_name("462.libquantum")
    assert libquantum.table_mpki == 26.9


def test_category_boundaries():
    for profile in TABLE8_PROFILES:
        if profile.category is Category.L:
            assert profile.rbcpki < 1.0
        elif profile.category is Category.M:
            assert 1.0 <= profile.rbcpki <= 5.0
        else:
            assert profile.rbcpki > 5.0


def test_conflict_fraction_bounded():
    for profile in TABLE8_PROFILES:
        assert 0.0 <= profile.conflict_fraction <= 1.0


def test_unknown_profile_rejected():
    with pytest.raises(ConfigError):
        profile_by_name("430.doom")


# ----------------------------------------------------------------------
# Generator.
# ----------------------------------------------------------------------
def test_generator_is_deterministic(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    profile = profile_by_name("429.mcf")
    a = build_benign_trace(profile, small_spec, mapping, seed=5)
    b = build_benign_trace(profile, small_spec, mapping, seed=5)
    for _ in range(100):
        ra, rb = a.next_record(), b.next_record()
        assert (ra.gap, ra.address, ra.is_write) == (rb.gap, rb.address, rb.is_write)


def test_generator_gap_tracks_mpki(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    profile = profile_by_name("429.mcf")  # MPKI ~ 202 -> mean gap ~ 4
    trace = build_benign_trace(profile, small_spec, mapping, seed=5)
    gaps = [trace.next_record().gap for _ in range(3000)]
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(profile.gap_mean, rel=0.25)


def test_generator_row_offset_separates_threads(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    profile = profile_by_name("444.namd")
    a = build_benign_trace(profile, small_spec, mapping, seed=5, row_offset=0)
    b = build_benign_trace(profile, small_spec, mapping, seed=5, row_offset=1024)
    rows_a = {mapping.decode(a.next_record().address).row for _ in range(200)}
    rows_b = {mapping.decode(b.next_record().address).row for _ in range(200)}
    assert not (rows_a & rows_b)


def test_generator_addresses_decode_into_working_set(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    profile = profile_by_name("403.gcc")
    trace = build_benign_trace(profile, small_spec, mapping, seed=5)
    for _ in range(300):
        decoded = mapping.decode(trace.next_record().address)
        assert decoded.row < profile.working_set_rows
        assert decoded.bank < min(profile.banks_used, small_spec.banks_per_rank)


def test_streaming_profile_walks_rows(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    profile = profile_by_name("movnti.colmaj")
    trace = ProfileTrace(profile, small_spec, mapping, DeterministicRng(3))
    rows = [mapping.decode(trace.next_record().address).row for _ in range(50)]
    assert len(set(rows)) > 25  # near-every access opens a new row


# ----------------------------------------------------------------------
# Attacks.
# ----------------------------------------------------------------------
def test_double_sided_alternates_aggressors(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    trace = double_sided_attack(small_spec, mapping, victim_row=100, banks=[0])
    rows = [mapping.decode(trace.next_record().address).row for _ in range(6)]
    assert rows == [99, 101, 99, 101, 99, 101]


def test_double_sided_rotates_banks(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    trace = double_sided_attack(small_spec, mapping, victim_row=100)
    banks = [mapping.decode(trace.next_record().address).bank for _ in range(small_spec.banks_per_rank)]
    assert banks == list(range(small_spec.banks_per_rank))


def test_attack_records_are_tight_reads(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    trace = double_sided_attack(small_spec, mapping, victim_row=100)
    record = trace.next_record()
    assert record.gap == 0
    assert not record.is_write


def test_single_sided_uses_far_dummy(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    trace = single_sided_attack(small_spec, mapping, aggressor_row=10, banks=[0])
    rows = {mapping.decode(trace.next_record().address).row for _ in range(4)}
    assert 10 in rows
    assert len(rows) == 2  # aggressor + dummy


def test_many_sided_spacing(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    trace = many_sided_attack(small_spec, mapping, first_row=50, sides=3, banks=[0])
    rows = sorted({mapping.decode(trace.next_record().address).row for _ in range(9)})
    assert rows == [50, 52, 54]


def test_build_attack_trace_by_name(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    for kind in ("double", "single", "many"):
        trace = build_attack_trace(kind, small_spec, mapping)
        assert trace.next_record().gap == 0
    with pytest.raises(ConfigError):
        build_attack_trace("sideways", small_spec, mapping)


def test_attack_validation(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    with pytest.raises(ConfigError):
        double_sided_attack(small_spec, mapping, victim_row=0)  # edge row


# ----------------------------------------------------------------------
# Mixes.
# ----------------------------------------------------------------------
def test_mix_counts_and_shapes():
    mixes = benign_mixes(5)
    assert len(mixes) == 5
    assert all(len(m.app_names) == 8 and not m.has_attack for m in mixes)
    amixes = attack_mixes(5)
    assert all(m.app_names[ATTACKER_THREAD] == "attack" for m in amixes)
    assert all(len(m.app_names) == 8 for m in amixes)


def test_mixes_are_deterministic():
    assert benign_mixes(3) == benign_mixes(3)
    assert attack_mixes(3) == attack_mixes(3)


def test_mix_prefix_stability():
    # Requesting more mixes must not change earlier ones.
    assert benign_mixes(2) == benign_mixes(10)[:2]


def test_mix_builds_traces(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    mix = attack_mixes(1)[0]
    traces = mix.build_traces(small_spec, mapping)
    assert len(traces) == 8
    assert mix.attacker_threads == {0}
    for trace in traces:
        record = trace.next_record()
        assert record.address >= 0


# ----------------------------------------------------------------------
# Row-stripe layout (the (slot * 8192) % rows_per_bank wrap bugfix).
# ----------------------------------------------------------------------
def test_row_offsets_match_historical_stride_on_default_geometry(spec):
    # 64K rows / 8 threads -> the historical 8192 stride, so golden
    # fixtures captured under the old formula are unchanged.
    assert mix_row_stride(spec) == 8192
    for slot in range(8):
        assert mix_row_offset(spec, slot) == slot * 8192


def test_row_offsets_distinct_on_small_geometry(small_spec):
    # The old (slot * 8192) % rows_per_bank collapsed every slot onto
    # offset 0 here (8192 % 4096 == 0), silently aliasing all eight
    # working sets (and the attack's aggressor/victim rows).
    assert small_spec.rows_per_bank == 4096
    offsets = [mix_row_offset(small_spec, slot) for slot in range(8)]
    assert len(set(offsets)) == 8
    assert offsets == [slot * 512 for slot in range(8)]


def test_row_stride_rejects_more_threads_than_rows(tiny_spec):
    with pytest.raises(ConfigError):
        mix_row_stride(tiny_spec, threads=tiny_spec.rows_per_bank + 1)


def test_mix_threads_get_disjoint_stripes_on_small_geometry(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    mix = benign_mixes(1)[0]
    traces = mix.build_traces(small_spec, mapping)
    stride = mix_row_stride(small_spec, len(traces))
    for slot, trace in enumerate(traces):
        rows = {mapping.decode(trace.next_record().address).row for _ in range(50)}
        profile = profile_by_name(mix.app_names[slot])
        if profile.working_set_rows <= stride:
            # Small working sets stay strictly inside their own stripe.
            assert all(slot * stride <= r < (slot + 1) * stride for r in rows)


# ----------------------------------------------------------------------
# Per-mix attack seeding (the byte-identical-attack-trace bugfix).
# ----------------------------------------------------------------------
def test_attack_mix_zero_keeps_canonical_victim(spec):
    # The fixed-seed fallback: mix 0 carries attack_seed=None and hosts
    # the canonical fixed attack the golden fixtures pin.
    mix = attack_mixes(1)[0]
    assert mix.attack_seed is None
    mapping = AddressMapping(spec, MappingScheme.MOP)
    trace = mix.build_traces(spec, mapping)[ATTACKER_THREAD]
    rows = {mapping.decode(trace.next_record().address).row for _ in range(64)}
    assert rows == {DEFAULT_VICTIM_ROW - 1, DEFAULT_VICTIM_ROW + 1}


def test_attack_mixes_host_distinct_attack_traces(spec):
    # Previously every attack mix hosted the byte-identical attack
    # trace; seeded mixes now hammer per-mix victim rows.
    mapping = AddressMapping(spec, MappingScheme.MOP)
    victims = []
    for mix in attack_mixes(4):
        trace = mix.build_traces(spec, mapping)[ATTACKER_THREAD]
        rows = sorted(
            {mapping.decode(trace.next_record().address).row for _ in range(64)}
        )
        assert len(rows) == 2 and rows[1] - rows[0] == 2  # victim +/- 1
        victims.append(rows[0] + 1)
    assert victims[0] == DEFAULT_VICTIM_ROW
    assert len(set(victims)) == 4
    # Seeded victims stay inside the attacker's row stripe, away from
    # every benign thread's working set.
    stride = mix_row_stride(spec, 8)
    for victim in victims[1:]:
        assert ATTACKER_THREAD * stride < victim < (ATTACKER_THREAD + 1) * stride - 1


def test_attack_seeding_deterministic(spec):
    mapping = AddressMapping(spec, MappingScheme.MOP)
    mix_a = attack_mixes(3)[2]
    mix_b = attack_mixes(3)[2]
    ta = mix_a.build_traces(spec, mapping)[ATTACKER_THREAD]
    tb = mix_b.build_traces(spec, mapping)[ATTACKER_THREAD]
    for _ in range(32):
        assert ta.next_record().address == tb.next_record().address


# ----------------------------------------------------------------------
# Channel-affine (pinned) mixes.
# ----------------------------------------------------------------------
def test_pinned_mix_confines_every_slot_to_its_channel(small_spec):
    from dataclasses import replace as _replace

    spec2 = _replace(small_spec, channels=2)
    mapping = AddressMapping(spec2, MappingScheme.MOP)
    mix = attack_mixes(1)[0].pinned()
    assert mix.name == "attack-000-pinned"
    traces = mix.build_traces(spec2, mapping)
    for slot, trace in enumerate(traces):
        channels = {
            mapping.decode(trace.next_record().address).channel for _ in range(100)
        }
        assert channels == {slot % 2}


def test_pinned_mix_degenerates_on_single_channel(small_spec):
    """On a one-channel spec the pinned variant replays the interleaved
    trace record for record."""
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    plain = attack_mixes(1)[0].build_traces(small_spec, mapping)
    pinned = attack_mixes(1)[0].pinned().build_traces(small_spec, mapping)
    for a, b in zip(plain, pinned):
        for _ in range(50):
            ra, rb = a.next_record(), b.next_record()
            assert (ra.gap, ra.address, ra.is_write) == (rb.gap, rb.address, rb.is_write)


# ----------------------------------------------------------------------
# Channel-affine profiles.
# ----------------------------------------------------------------------
def test_pinned_profile_emits_only_its_channel(small_spec):
    from dataclasses import replace as _replace

    spec2 = _replace(small_spec, channels=2)
    mapping = AddressMapping(spec2, MappingScheme.MOP)
    profile = profile_by_name("429.mcf").pinned_to(1)
    assert profile.channel_affinity == 1
    trace = ProfileTrace(profile, spec2, mapping, DeterministicRng(7))
    channels = {mapping.decode(trace.next_record().address).channel for _ in range(200)}
    assert channels == {1}
    # Affinity wraps modulo the channel count.
    wrapped = ProfileTrace(
        profile_by_name("429.mcf").pinned_to(3), spec2, mapping, DeterministicRng(7)
    )
    channels = {mapping.decode(wrapped.next_record().address).channel for _ in range(50)}
    assert channels == {1}


def test_unpinned_profile_still_spreads_rows(small_spec):
    from dataclasses import replace as _replace

    spec2 = _replace(small_spec, channels=2)
    mapping = AddressMapping(spec2, MappingScheme.MOP)
    trace = ProfileTrace(profile_by_name("429.mcf"), spec2, mapping, DeterministicRng(7))
    channels = {mapping.decode(trace.next_record().address).channel for _ in range(300)}
    assert channels == {0, 1}


def test_channel_affine_run_skews_per_channel_rows():
    """End to end: a pinned working set drives all demand traffic to one
    channel shard, visible in the per-channel ChannelResult rows."""
    from repro.harness.runner import HarnessConfig, Runner
    from repro.workloads.generator import build_benign_trace as _build

    hcfg = HarnessConfig(
        scale=128.0, instructions_per_thread=2_000, warmup_ns=1_000.0, num_channels=2
    )
    profile = profile_by_name("429.mcf").pinned_to(0)
    trace = _build(profile, hcfg.spec(), hcfg.mapping(), seed=hcfg.seed)
    outcome = Runner(hcfg).run_traces([trace], "none")
    rows = outcome.result.channels
    assert len(rows) == 2
    pinned, other = rows[0], rows[1]
    # All reads/writes/activations land on the pinned channel; the
    # other shard sees only background refresh.
    assert pinned.counts.rd > 0
    assert pinned.counts.act > 0
    assert other.counts.rd == 0
    assert other.counts.wr == 0
    assert other.counts.act == 0
    # Per-thread per-channel stats agree with the device-level skew.
    per_channel = outcome.result.threads[0].mem_per_channel
    assert per_channel[0].accesses > 0
    assert per_channel[1].accesses == 0
