"""Unit tests for CBT, TWiCe, and Graphene (deterministic counters)."""

import pytest

from repro.dram.spec import DDR4_2400
from repro.mitigations.cbt import CounterBasedTree
from repro.mitigations.graphene import Graphene
from repro.mitigations.twice import TWiCe
from tests.test_mitigations_reactive import make_context


# ----------------------------------------------------------------------
# Graphene
# ----------------------------------------------------------------------
def test_graphene_sizing_rule():
    threshold, entries = Graphene.sizing(16384, DDR4_2400.tREFW, DDR4_2400.tRC)
    assert threshold == 4096
    # W / T = (64 ms / 46.25 ns) / 4096 ~ 338.
    assert entries == pytest.approx(338, abs=2)


def test_graphene_refreshes_at_threshold_multiples():
    graphene = Graphene(threshold=10)
    graphene.attach(make_context())
    for i in range(25):
        graphene.on_activate(0, 0, 100, 0, 0.0)
    vrefs = graphene.drain_victim_refreshes()
    # Refreshes fire at counts 10 and 20: 2 x 2 neighbors.
    assert len(vrefs) == 4
    assert all(row in (99, 101) for (_, _, row) in vrefs)


def test_graphene_tracks_frequent_rows_despite_full_table():
    graphene = Graphene(threshold=50)
    graphene.attach(make_context())
    graphene.table_entries = 4  # force a tiny table
    # Interleave one hot row with a stream of cold rows.
    for i in range(400):
        graphene.on_activate(0, 0, 7, 0, 0.0)
        graphene.on_activate(0, 0, 1000 + i, 0, 0.0)
    table = graphene._tables[(0, 0)]
    assert 7 in table
    # Misra-Gries may undercount but only by the spill value.
    spill = graphene._spill.get((0, 0), 0)
    assert table[7] + spill >= 400


def test_graphene_resets_each_refresh_window():
    graphene = Graphene(threshold=100)
    graphene.attach(make_context())
    graphene.on_activate(0, 0, 7, 0, 0.0)
    graphene.on_time_advance(DDR4_2400.tREFW + 1.0)
    assert graphene._tables == {}


def test_graphene_is_deterministic_and_scalable():
    assert Graphene.deterministic_protection
    assert Graphene.scales_with_vulnerability
    assert not Graphene.commodity_compatible


# ----------------------------------------------------------------------
# TWiCe
# ----------------------------------------------------------------------
def test_twice_refreshes_at_threshold():
    twice = TWiCe()
    twice.attach(make_context(nrh=1024))
    threshold = twice.refresh_threshold
    for _ in range(threshold):
        twice.on_activate(0, 0, 100, 0, 0.0)
    vrefs = twice.drain_victim_refreshes()
    assert (0, 0, 99) in vrefs and (0, 0, 101) in vrefs


def test_twice_prunes_cold_entries():
    twice = TWiCe()
    twice.attach(make_context(nrh=32768))
    twice.on_activate(0, 0, 100, 0, 0.0)  # one ACT: far below prune rate
    assert 100 in twice._tables[(0, 0)]
    # After enough pruning intervals the cold entry dies.
    twice.on_time_advance(20 * DDR4_2400.tREFI)
    assert 100 not in twice._tables[(0, 0)]


def test_twice_keeps_hot_entries():
    twice = TWiCe()
    twice.attach(make_context(nrh=1024))
    # Sustained high-rate activations survive pruning.
    now = 0.0
    for interval in range(5):
        for _ in range(200):
            twice.on_activate(0, 0, 100, 0, now)
        now += DDR4_2400.tREFI
        twice.on_time_advance(now)
    assert twice.max_table_entries >= 1
    assert twice.refreshes_injected > 0


# ----------------------------------------------------------------------
# CBT
# ----------------------------------------------------------------------
def test_cbt_splits_hot_regions():
    cbt = CounterBasedTree(levels=4, counter_budget=125)
    cbt.attach(make_context(nrh=1024))
    for _ in range(2000):
        cbt.on_activate(0, 0, 100, 0, 0.0)
    root = cbt._roots[(0, 0)]
    assert not root.is_leaf  # the tree split toward the hot row
    assert cbt._counters_used[(0, 0)] > 1


def test_cbt_leaf_refreshes_region():
    cbt = CounterBasedTree(levels=2, counter_budget=125, max_refresh_rows=8)
    cbt.attach(make_context(nrh=256))
    for _ in range(3000):
        cbt.on_activate(0, 0, 100, 0, 0.0)
    assert cbt.region_refreshes > 0
    assert len(cbt.drain_victim_refreshes()) > 0


def test_cbt_counter_budget_limits_splits():
    cbt = CounterBasedTree(levels=10, counter_budget=3)
    cbt.attach(make_context(nrh=256))
    for _ in range(5000):
        cbt.on_activate(0, 0, 100, 0, 0.0)
    assert cbt._counters_used[(0, 0)] <= 3


def test_cbt_resets_every_window():
    cbt = CounterBasedTree()
    cbt.attach(make_context())
    cbt.on_activate(0, 0, 100, 0, 0.0)
    cbt.on_time_advance(DDR4_2400.tREFW + 1.0)
    assert cbt._roots == {}


def test_cbt_thresholds_ladder_monotone():
    cbt = CounterBasedTree(levels=6)
    cbt.attach(make_context(nrh=32768))
    assert cbt._thresholds == sorted(cbt._thresholds)
    assert cbt._thresholds[-1] == int(16384 / 2)
