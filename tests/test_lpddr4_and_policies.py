"""Cross-standard (LPDDR4/DDR3) and scheduling-policy coverage.

Section 3.1.3 ("Tuning for Different DRAM Standards"): BlockHammer's
derivation adapts across DDRx/LPDDRx purely through the three public
timing constraints (tRC, tREFW, tFAW).  These tests run end-to-end on
LPDDR4 and DDR3 specs and exercise the FCFS scheduling ablation.
"""

from dataclasses import replace

import pytest

from repro.core.blockhammer import BlockHammer
from repro.core.config import BlockHammerConfig
from repro.cpu.trace import ListTrace, TraceRecord
from repro.dram.address import AddressMapping, MappingScheme
from repro.dram.rowhammer import DisturbanceProfile
from repro.dram.spec import DDR3_1600, LPDDR4_3200
from repro.mem.scheduler import FcfsPolicy
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.attacks import double_sided_attack
from repro.workloads.generator import build_benign_trace
from repro.workloads.profiles import profile_by_name


def _small(spec):
    return replace(spec.scaled(64), banks_per_rank=4, rows_per_bank=4096)


@pytest.mark.parametrize("base_spec", [LPDDR4_3200, DDR3_1600])
def test_blockhammer_protects_other_standards(base_spec):
    spec = _small(base_spec)
    mapping = AddressMapping(spec, MappingScheme.MOP)
    trace = double_sided_attack(spec, mapping, victim_row=64, banks=[0, 1])
    config = SystemConfig(spec=spec, disturbance=DisturbanceProfile(nrh=128))

    unprotected = System(config, [trace]).run(instructions_per_thread=40_000)
    assert unprotected.total_bitflips > 0

    mechanism = BlockHammer()
    protected = System(
        SystemConfig(spec=spec, disturbance=DisturbanceProfile(nrh=128)),
        [double_sided_attack(spec, mapping, victim_row=64, banks=[0, 1])],
        mechanism,
    ).run(instructions_per_thread=40_000)
    assert protected.total_bitflips == 0


def test_lpddr4_tdelay_derivation_follows_spec():
    """LPDDR4's halved tREFW halves tDelay (Section 3.1.3)."""
    ddr4_cfg = BlockHammerConfig.for_nrh(32768)
    lp_cfg = BlockHammerConfig.for_nrh(32768, LPDDR4_3200)
    assert lp_cfg.t_delay_ns == pytest.approx(ddr4_cfg.t_delay_ns / 2, rel=0.02)


def test_fcfs_policy_end_to_end(small_spec):
    """The FCFS ablation runs and loses row locality vs FR-FCFS."""
    mapping = AddressMapping(small_spec, MappingScheme.MOP)

    def traces():
        return [
            build_benign_trace(
                profile_by_name("429.mcf"), small_spec, mapping, seed=3
            )
        ]

    config = SystemConfig(spec=small_spec)
    frfcfs = System(config, traces()).run(instructions_per_thread=30_000)
    fcfs = System(SystemConfig(spec=small_spec), traces(), policy=FcfsPolicy()).run(
        instructions_per_thread=30_000
    )
    assert fcfs.threads[0].ipc <= frfcfs.threads[0].ipc + 1e-9


def test_fcfs_still_protected_by_blockhammer(small_spec):
    mapping = AddressMapping(small_spec, MappingScheme.MOP)
    trace = double_sided_attack(small_spec, mapping, victim_row=64, banks=[0, 1])
    config = SystemConfig(spec=small_spec, disturbance=DisturbanceProfile(nrh=128))
    result = System(config, [trace], BlockHammer(), policy=FcfsPolicy()).run(
        instructions_per_thread=20_000
    )
    assert result.total_bitflips == 0
