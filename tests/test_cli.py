"""Tests for the command-line experiment runner."""

import pytest

from repro.harness.cli import build_parser, main


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "NBL" in out and "8192" in out


def test_security_command(capsys):
    assert main(["security"]) == 0
    out = capsys.readouterr().out
    assert "SAFE" in out and "UNSAFE" not in out


def test_table4_command(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "blockhammer" in out and "graphene" in out


def test_table8_command_with_subset(capsys):
    code = main(
        [
            "table8",
            "--scale", "512",
            "--instructions", "8000",
            "--warmup-us", "5",
            "--apps", "429.mcf",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "429.mcf" in out


def test_rhli_command_small(capsys):
    code = main(["rhli", "--scale", "512", "--instructions", "8000", "--warmup-us", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "blockhammer-observe" in out


def test_chansweep_command_small(capsys):
    code = main(
        [
            "chansweep",
            "--scale", "512",
            "--instructions", "2000",
            "--warmup-us", "2",
            "--mixes", "1",
            "--channel-sweep", "1,2",
            "--mechanisms", "blockhammer",
            "--pinned",
            "--no-cache",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    # Summary rows for both channel counts and both layouts, plus the
    # per-channel attribution table.
    assert "interleaved" in out and "pinned" in out
    assert "attack-000-pinned" in out
    assert "atk RHLI" in out


def test_chansweep_rejects_bad_channel_list():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["chansweep", "--channel-sweep", "1,zero"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["chansweep", "--channel-sweep", "0"])
