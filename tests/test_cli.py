"""Tests for the command-line experiment runner."""

import pytest

from repro.harness.cli import build_parser, main


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "NBL" in out and "8192" in out


def test_security_command(capsys):
    assert main(["security"]) == 0
    out = capsys.readouterr().out
    assert "SAFE" in out and "UNSAFE" not in out


def test_table4_command(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "blockhammer" in out and "graphene" in out


def test_table8_command_with_subset(capsys):
    code = main(
        [
            "table8",
            "--scale", "512",
            "--instructions", "8000",
            "--warmup-us", "5",
            "--apps", "429.mcf",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "429.mcf" in out


def test_rhli_command_small(capsys):
    code = main(["rhli", "--scale", "512", "--instructions", "8000", "--warmup-us", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "blockhammer-observe" in out


def test_chansweep_command_small(capsys):
    code = main(
        [
            "chansweep",
            "--scale", "512",
            "--instructions", "2000",
            "--warmup-us", "2",
            "--mixes", "1",
            "--channel-sweep", "1,2",
            "--mechanisms", "blockhammer",
            "--pinned",
            "--no-cache",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    # Summary rows for both channel counts and both layouts, plus the
    # per-channel attribution table.
    assert "interleaved" in out and "pinned" in out
    assert "attack-000-pinned" in out
    assert "atk RHLI" in out


def test_chansweep_rejects_bad_channel_list():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["chansweep", "--channel-sweep", "1,zero"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["chansweep", "--channel-sweep", "0"])


def test_exec_policy_flags_set_environment(monkeypatch):
    """--retries/--job-timeout/--on-error/--progress thread through to
    the REPRO_* environment that resolve_policy reads."""
    import os

    from repro.harness import parallel
    from repro.harness.retry import (
        JOB_TIMEOUT_ENV,
        ON_ERROR_ENV,
        RETRIES_ENV,
        resolve_policy,
    )

    for var in (RETRIES_ENV, JOB_TIMEOUT_ENV, ON_ERROR_ENV, parallel.PROGRESS_ENV):
        monkeypatch.delenv(var, raising=False)
    code = main(
        [
            "table1",  # no sweep: flags must still parse and apply
            "--retries", "4",
            "--job-timeout", "30",
            "--on-error", "skip",
            "--progress",
        ]
    )
    assert code == 0
    assert os.environ[RETRIES_ENV] == "4"
    assert os.environ[JOB_TIMEOUT_ENV] == "30.0"
    assert os.environ[ON_ERROR_ENV] == "skip"
    assert os.environ[parallel.PROGRESS_ENV] == "1"
    policy = resolve_policy(None)
    assert policy.attempts == 5
    assert policy.job_timeout_s == 30.0
    assert policy.on_error == "skip"


def test_exec_policy_flags_validate():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig4", "--retries", "-1"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig4", "--job-timeout", "0"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig4", "--on-error", "explode"])


def test_progress_prints_sweep_report(capsys, monkeypatch):
    from repro.harness import parallel

    monkeypatch.delenv(parallel.PROGRESS_ENV, raising=False)
    code = main(
        [
            "fig4",
            "--scale", "512",
            "--instructions", "2000",
            "--warmup-us", "2",
            "--apps", "403.gcc",
            "--mechanisms", "none",
            "--progress",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "sweep:" in captured.err
    assert "0 failed" in captured.err
    assert "single:403.gcc" in captured.err  # per-job progress lines
    assert "mechanism" in captured.out  # the figure table still prints


def test_trace_command_writes_artifacts(tmp_path, capsys):
    """The trace subcommand runs one attack-mix scenario and writes a
    valid Perfetto trace plus the epoch-metrics CSV."""
    import csv
    import json

    from repro.obs.metrics import FIELDS

    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.csv"
    code = main(
        [
            "trace",
            "--scale", "4096",
            "--instructions", "6000",
            "--warmup-us", "5",
            "--metrics-epoch-ns", "5000",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "blockhammer" in out and "trace events" in out
    document = json.loads(trace_path.read_text())
    assert document["displayTimeUnit"] == "ns"
    names = {e.get("name") for e in document["traceEvents"]}
    assert "ACT" in names and "measure_start" in names
    with open(metrics_path) as handle:
        rows = list(csv.DictReader(handle))
    assert rows and tuple(rows[0]) == FIELDS


def test_trace_command_ring_limit(tmp_path, capsys):
    """A tiny --trace-limit drops events and the summary reports it."""
    code = main(
        [
            "trace",
            "--scale", "4096",
            "--instructions", "4000",
            "--warmup-us", "5",
            "--trace-limit", "50",
            "--trace-out", str(tmp_path / "t.json"),
            "--metrics-out", str(tmp_path / "m.csv"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    dropped = int(next(l for l in out.splitlines() if "dropped" in l).split()[-1])
    assert dropped > 0


def test_report_json_writes_sweep_artifact(tmp_path, capsys):
    import json

    path = tmp_path / "report.json"
    code = main(
        [
            "fig5",
            "--mixes", "1",
            "--mechanisms", "none",
            "--scale", "2048",
            "--instructions", "2000",
            "--warmup-us", "2",
            "--no-cache",
            "--report-json", str(path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "none" in out and "blockhammer" not in out  # mechanisms filter
    document = json.loads(path.read_text())
    assert document["total"] > 0 and document["executed"] == document["total"]
    assert len(document["jobs"]) == document["total"]
    assert document["aggregate"]["executed_events"] > 0


def test_report_json_without_sweep_warns(tmp_path, capsys):
    path = tmp_path / "report.json"
    code = main(["table1", "--report-json", str(path)])
    assert code == 0
    assert not path.exists()
    assert "no sweep ran" in capsys.readouterr().err


def test_stale_report_never_leaks_into_next_command(tmp_path, capsys):
    """A sweep command leaves a module-global last report; a following
    non-sweep command in the same process must not republish it."""
    from repro.harness import parallel

    assert main(
        [
            "fig5",
            "--mixes", "1",
            "--mechanisms", "none",
            "--scale", "2048",
            "--instructions", "2000",
            "--warmup-us", "2",
            "--no-cache",
        ]
    ) == 0
    capsys.readouterr()
    path = tmp_path / "stale.json"
    assert main(["table1", "--report-json", str(path)]) == 0
    assert not path.exists()  # the stale report was cleared, not reused
    assert parallel.last_report() is None
